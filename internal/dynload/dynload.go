// Package dynload simulates the pieces of the ELF dynamic linker that
// tf-Darshan's runtime attachment relies on (paper Fig. 2): shared
// libraries as symbol tables, a per-process Global Offset Table (GOT)
// through which all inter-library calls resolve, dlopen/dlsym, and GOT
// patching.
//
// The TensorFlow-like runtime makes every I/O call through a GOT entry, so
// redirecting the entry to a Darshan wrapper instruments the call stream
// transparently — and restoring the entry detaches instrumentation at
// runtime, the capability Table I credits to tf-Darshan over plain
// LD_PRELOAD Darshan. An LD_PRELOAD-style link mode is also provided so the
// classic whole-application Darshan deployment can be simulated for
// comparison.
package dynload

import (
	"errors"
	"fmt"
	"sort"
)

// Errors returned by loader operations.
var (
	ErrNoLibrary  = errors.New("dynload: library not found")
	ErrNoSymbol   = errors.New("dynload: undefined symbol")
	ErrNotPatched = errors.New("dynload: symbol not patched")
)

// Library is a shared object: a named set of exported symbols. Symbol
// values are ordinary Go function values; callers type-assert to the
// signature declared by the owning interface package (internal/libc for
// the C library surface).
type Library struct {
	name string
	syms map[string]any
	defs []string
}

// NewLibrary returns an empty library with the given soname.
func NewLibrary(name string) *Library {
	return &Library{name: name, syms: make(map[string]any)}
}

// Name returns the soname.
func (l *Library) Name() string { return l.name }

// Define exports fn under the given symbol name.
func (l *Library) Define(symbol string, fn any) {
	if fn == nil {
		panic("dynload: nil symbol definition")
	}
	if _, dup := l.syms[symbol]; !dup {
		l.defs = append(l.defs, symbol)
	}
	l.syms[symbol] = fn
}

// Sym looks up an exported symbol.
func (l *Library) Sym(symbol string) (any, bool) {
	fn, ok := l.syms[symbol]
	return fn, ok
}

// Symbols returns exported symbol names in definition order.
func (l *Library) Symbols() []string {
	return append([]string(nil), l.defs...)
}

// GOTEntry is one relocated slot in the process's Global Offset Table.
// Call sites hold the entry pointer (as compiled code holds the GOT slot
// address) and resolve the target on every call, so a runtime patch takes
// effect immediately for all callers.
type GOTEntry struct {
	Symbol   string
	fn       any
	original any
	patched  bool
	// Provider is the soname the symbol originally resolved from.
	Provider string
}

// Fn returns the entry's current target.
func (e *GOTEntry) Fn() any { return e.fn }

// Patched reports whether the entry has been redirected.
func (e *GOTEntry) Patched() bool { return e.patched }

// Process is a process image: loaded libraries and the GOT binding the
// main program's imported symbols.
type Process struct {
	loadable map[string]*Library // .so files available to dlopen
	loaded   map[string]*Library
	got      map[string]*GOTEntry
	gotOrder []string
}

// NewProcess returns an empty process image.
func NewProcess() *Process {
	return &Process{
		loadable: make(map[string]*Library),
		loaded:   make(map[string]*Library),
		got:      make(map[string]*GOTEntry),
	}
}

// Install makes lib available for dlopen (like placing the .so on the
// library search path).
func (p *Process) Install(lib *Library) { p.loadable[lib.Name()] = lib }

// LinkStartup performs load-time linking: every symbol exported by libs is
// relocated into the GOT, first definition wins. Libraries in preload take
// precedence over libs, emulating LD_PRELOAD interposition.
func (p *Process) LinkStartup(preload []*Library, libs ...*Library) {
	link := func(l *Library) {
		p.loaded[l.Name()] = l
		for _, s := range l.Symbols() {
			if _, exists := p.got[s]; exists {
				continue // first definition wins, as in ELF symbol resolution
			}
			fn, _ := l.Sym(s)
			p.got[s] = &GOTEntry{Symbol: s, fn: fn, original: fn, Provider: l.Name()}
			p.gotOrder = append(p.gotOrder, s)
		}
	}
	for _, l := range preload {
		link(l)
	}
	for _, l := range libs {
		link(l)
	}
}

// Dlopen loads an installed library at runtime. Unlike LinkStartup it does
// not relocate the library's symbols into the GOT — exactly why tf-Darshan
// must patch the GOT itself after dlopen'ing libdarshan.
func (p *Process) Dlopen(name string) (*Library, error) {
	if l, ok := p.loaded[name]; ok {
		return l, nil
	}
	l, ok := p.loadable[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoLibrary, name)
	}
	p.loaded[name] = l
	return l, nil
}

// Dlsym resolves a symbol from a dlopen'ed library.
func (p *Process) Dlsym(lib *Library, symbol string) (any, error) {
	fn, ok := lib.Sym(symbol)
	if !ok {
		return nil, fmt.Errorf("%w: %s in %s", ErrNoSymbol, symbol, lib.Name())
	}
	return fn, nil
}

// GOT returns the entry for symbol; call sites cache the pointer like
// compiled PLT stubs cache GOT slot addresses.
func (p *Process) GOT(symbol string) (*GOTEntry, error) {
	e, ok := p.got[symbol]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSymbol, symbol)
	}
	return e, nil
}

// MustGOT is GOT for symbols the program cannot run without.
func (p *Process) MustGOT(symbol string) *GOTEntry {
	e, err := p.GOT(symbol)
	if err != nil {
		panic(err)
	}
	return e
}

// ScanGOT returns the GOT symbols accepted by match, in relocation order.
// tf-Darshan's middle-man uses this to find the I/O symbols to redirect.
func (p *Process) ScanGOT(match func(symbol string) bool) []string {
	var out []string
	for _, s := range p.gotOrder {
		if match == nil || match(s) {
			out = append(out, s)
		}
	}
	return out
}

// PatchGOT redirects symbol to fn, returning the previous target so the
// interposer can forward to the real implementation.
func (p *Process) PatchGOT(symbol string, fn any) (prev any, err error) {
	e, ok := p.got[symbol]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSymbol, symbol)
	}
	prev = e.fn
	e.fn = fn
	e.patched = true
	return prev, nil
}

// RestoreGOT resets a patched symbol to its load-time target.
func (p *Process) RestoreGOT(symbol string) error {
	e, ok := p.got[symbol]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSymbol, symbol)
	}
	if !e.patched {
		return fmt.Errorf("%w: %s", ErrNotPatched, symbol)
	}
	e.fn = e.original
	e.patched = false
	return nil
}

// PatchedSymbols lists currently redirected symbols, sorted.
func (p *Process) PatchedSymbols() []string {
	var out []string
	for s, e := range p.got {
		if e.patched {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Loaded reports whether the named library has been loaded (startup link
// or dlopen).
func (p *Process) Loaded(name string) bool {
	_, ok := p.loaded[name]
	return ok
}
