package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/tf/profiler"
)

func sampleSpace() *profiler.XSpace {
	var s profiler.XSpace
	host := s.Plane("/host:CPU")
	l := host.Line(1, "main")
	l.Events = append(l.Events, profiler.XEvent{Name: "train_step", StartNs: 1_000_000, DurNs: 2_000_000})
	d := s.Plane("/host:tf-darshan(POSIX)")
	d.SetStat("posix_reads", "4")
	f := d.Line(2, "/data/a.jpg")
	f.Events = append(f.Events,
		profiler.XEvent{Name: "pread", StartNs: 1_100_000, DurNs: 500_000,
			Metadata: map[string]string{"offset": "0", "length": "88064"}},
		profiler.XEvent{Name: "pread", StartNs: 1_700_000, DurNs: 1_000,
			Metadata: map[string]string{"offset": "88064", "length": "0"}},
	)
	return &s
}

func TestFromXSpaceStructure(t *testing.T) {
	f := FromXSpace(sampleSpace(), 1_000_000)
	// 2 process metadata + 2 thread metadata + 3 events.
	if len(f.TraceEvents) != 7 {
		t.Fatalf("events = %d", len(f.TraceEvents))
	}
	blob := string(bytes.Join([][]byte{[]byte("")}, nil))
	_ = blob
	joined := ""
	for _, raw := range f.TraceEvents {
		joined += string(raw)
	}
	for _, want := range []string{
		`"process_name"`, `"thread_name"`, `"/host:tf-darshan(POSIX)"`,
		`"train_step"`, `"pread"`, `"offset":"88064"`, `"length":"0"`,
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("trace missing %s", want)
		}
	}
	// Session-relative timestamps: first event at t=0us.
	if !strings.Contains(joined, `"ts":0`) {
		t.Fatal("timestamps not session-relative")
	}
}

func TestJSONGzRoundTrip(t *testing.T) {
	f := FromXSpace(sampleSpace(), 0)
	var buf bytes.Buffer
	if err := f.WriteJSONGz(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONGz(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.TraceEvents) != len(f.TraceEvents) {
		t.Fatalf("round trip lost events: %d vs %d", len(got.TraceEvents), len(f.TraceEvents))
	}
}

func TestReadJSONGzRejectsPlain(t *testing.T) {
	if _, err := ReadJSONGz(strings.NewReader(`{"traceEvents":[]}`)); err == nil {
		t.Fatal("plain JSON accepted as gzip")
	}
}

func TestRenderTimelines(t *testing.T) {
	out := RenderTimelines(sampleSpace(), 1_000_000, 0, 0)
	for _, want := range []string{
		"=== /host:CPU ===", "train_step",
		"=== /host:tf-darshan(POSIX) ===",
		"posix_reads: 4",
		"/data/a.jpg", "length=0", "offset=88064",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderTimelinesTruncation(t *testing.T) {
	var s profiler.XSpace
	p := s.Plane("/p")
	for i := int64(0); i < 10; i++ {
		l := p.Line(i, "line")
		for j := 0; j < 20; j++ {
			l.Events = append(l.Events, profiler.XEvent{Name: "e", StartNs: int64(j), DurNs: 1})
		}
	}
	out := RenderTimelines(&s, 0, 2, 3)
	if !strings.Contains(out, "... 8 more timelines") {
		t.Fatalf("line truncation missing:\n%s", out)
	}
	if !strings.Contains(out, "... 17 more events") {
		t.Fatalf("event truncation missing:\n%s", out)
	}
}
