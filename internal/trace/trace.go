// Package trace exports profiler data in the Chrome trace-event format
// that TensorBoard's TraceViewer consumes (the trace.json.gz of the
// paper's Fig. 1), and renders text timelines for terminal inspection of
// the Fig. 8 / Fig. 10 views.
package trace

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/tf/profiler"
)

// Event is a Chrome trace-event ("X" complete events only, which is what
// TensorBoard emits for op spans).
type Event struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Metadata is a process/thread-name metadata event.
type Metadata struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int64             `json:"tid,omitempty"`
	Args map[string]string `json:"args"`
}

// File is a complete trace document.
type File struct {
	TraceEvents []json.RawMessage `json:"traceEvents"`
}

// FromXSpace converts an XSpace to trace events: one trace "process" per
// plane, one thread per line, preserving names. Event times are converted
// from virtual nanoseconds to microseconds relative to sessionStartNs.
func FromXSpace(space *profiler.XSpace, sessionStartNs int64) *File {
	f := &File{}
	add := func(v any) {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err) // static shapes: cannot fail
		}
		f.TraceEvents = append(f.TraceEvents, b)
	}
	for pi, plane := range space.Planes {
		pid := pi + 1
		add(Metadata{Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]string{"name": plane.Name}})
		for _, line := range plane.Lines {
			add(Metadata{Name: "thread_name", Ph: "M", PID: pid, TID: line.ID,
				Args: map[string]string{"name": line.Name}})
			for _, ev := range line.Events {
				add(Event{
					Name: ev.Name,
					Ph:   "X",
					TS:   float64(ev.StartNs-sessionStartNs) / 1e3,
					Dur:  float64(ev.DurNs) / 1e3,
					PID:  pid,
					TID:  line.ID,
					Args: ev.Args(),
				})
			}
		}
	}
	return f
}

// WriteJSON writes the trace as plain JSON.
func (f *File) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// WriteJSONGz writes trace.json.gz, the artifact TensorBoard loads.
func (f *File) WriteJSONGz(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if err := f.WriteJSON(zw); err != nil {
		return err
	}
	return zw.Close()
}

// ReadJSONGz parses a trace.json.gz document.
func ReadJSONGz(r io.Reader) (*File, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	var f File
	if err := json.NewDecoder(zr).Decode(&f); err != nil {
		return nil, err
	}
	return &f, nil
}

// parsedEvent is the renderer's decoded view of a raw event.
type parsedEvent struct {
	Event
}

// RenderTimelines renders a text TraceViewer: per plane, per line, events
// in time order with offsets/lengths from their args — the terminal
// equivalent of zooming into Fig. 8's POSIX timelines. maxLinesPerPlane
// and maxEventsPerLine bound the output (0 = unlimited).
func RenderTimelines(space *profiler.XSpace, sessionStartNs int64, maxLinesPerPlane, maxEventsPerLine int) string {
	var b strings.Builder
	for _, plane := range space.Planes {
		fmt.Fprintf(&b, "=== %s ===\n", plane.Name)
		if len(plane.Stats) > 0 {
			keys := make([]string, 0, len(plane.Stats))
			for k := range plane.Stats {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "    %s: %s\n", k, plane.Stats[k])
			}
		}
		lines := plane.Lines
		if maxLinesPerPlane > 0 && len(lines) > maxLinesPerPlane {
			lines = lines[:maxLinesPerPlane]
		}
		for _, line := range lines {
			fmt.Fprintf(&b, "  -- %s\n", line.Name)
			events := line.Events
			if maxEventsPerLine > 0 && len(events) > maxEventsPerLine {
				events = events[:maxEventsPerLine]
			}
			for _, ev := range events {
				start := float64(ev.StartNs-sessionStartNs) / 1e6
				fmt.Fprintf(&b, "     [%12.3fms +%9.3fms] %s", start, float64(ev.DurNs)/1e6, ev.Name)
				if args := ev.Args(); len(args) > 0 {
					keys := make([]string, 0, len(args))
					for k := range args {
						keys = append(keys, k)
					}
					sort.Strings(keys)
					for _, k := range keys {
						fmt.Fprintf(&b, " %s=%s", k, args[k])
					}
				}
				b.WriteByte('\n')
			}
			if maxEventsPerLine > 0 && len(line.Events) > maxEventsPerLine {
				fmt.Fprintf(&b, "     ... %d more events\n", len(line.Events)-maxEventsPerLine)
			}
		}
		if maxLinesPerPlane > 0 && len(plane.Lines) > maxLinesPerPlane {
			fmt.Fprintf(&b, "  ... %d more timelines\n", len(plane.Lines)-maxLinesPerPlane)
		}
	}
	return b.String()
}
