// ImageNet case study (paper §V-A): profile an AlexNet training epoch on
// the Kebnekaise/Lustre platform and observe the doubled read counts,
// zero-length reads, and the ~8x bandwidth gain from threading the input
// pipeline.
//
//	go run ./examples/imagenet [-scale 0.05] [-threads 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/tensorboard"
	"repro/internal/tf/keras"
	"repro/internal/tf/tfdata"
	"repro/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0.05, "dataset scale (1.0 = 128,000 files / 11.6GB)")
	threads := flag.Int("threads", 1, "num_parallel_calls for the input pipeline (paper: 1 and 28)")
	flag.Parse()

	m := platform.NewKebnekaise(platform.Options{})
	cfg := core.DefaultTracerConfig()
	cfg.SizeOf = func(p string) (int64, bool) {
		ino, ok := m.FS.Lookup(p)
		if !ok {
			return 0, false
		}
		return ino.Size, true
	}
	handle := core.Register(m.Env, cfg)

	spec := workload.ImageNetSpec(platform.KebnekaiseLustre+"/imagenet", *scale)
	d, err := workload.BuildImageNet(m.FS, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d files, %.2f GB, median %d KB\n",
		len(d.Paths), float64(d.Total())/float64(1<<30), d.Median()/1024)

	steps := len(d.Paths) / 256
	if steps < 1 {
		steps = 1
	}
	model := workload.AlexNet()
	tb := keras.NewTensorBoard(1, steps)
	var hist *keras.History
	m.K.Spawn("main", func(t *sim.Thread) {
		ds := tfdata.FromFiles(m.Env, d.Paths).Shuffle(20200812).
			Map(workload.ImageNetMap, *threads).Batch(256).Prefetch(10)
		it, err := ds.MakeIterator()
		if err != nil {
			log.Fatal(err)
		}
		hist, err = model.Fit(t, m.Env, it, keras.FitOptions{
			Steps: steps, Callbacks: []keras.Callback{tb},
		})
		if err != nil {
			log.Fatal(err)
		}
	})
	if err := m.K.Run(); err != nil {
		log.Fatal(err)
	}

	a := handle.Last
	pd := &tensorboard.ProfileData{
		Run:            fmt.Sprintf("imagenet-%dt", *threads),
		History:        hist,
		Analysis:       a,
		Space:          tb.Space,
		SessionStartNs: tb.Session.StartNs,
	}
	fmt.Println()
	fmt.Println(pd.OverviewText())
	fmt.Println(pd.InputPipelineText())
	fmt.Printf("headline: %.2f MB/s POSIX read bandwidth with %d thread(s); %d opens, %d reads (%d zero-length)\n",
		a.ReadBandwidthMBps(), *threads, a.Opens, a.Reads, a.ZeroReads)
	fmt.Println("try -threads 28 to reproduce the paper's ~8x bandwidth increase (Fig. 7b)")
}
