// Quickstart: profile a small training run with tf-Darshan and print the
// analysis.
//
// This walks the full public surface in ~60 lines: boot a simulated
// machine, create a dataset, register tf-Darshan with the TensorFlow-like
// profiler, train with the TensorBoard callback, and read the in-situ
// analysis tf-Darshan extracted from Darshan's buffers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/tensorboard"
	"repro/internal/tf/keras"
	"repro/internal/tf/tfdata"
	"repro/internal/workload"
)

func main() {
	// Boot the Greendog workstation: HDD + SSD + Optane, libc over a
	// virtual file system, Darshan installed as a loadable library.
	m := platform.NewGreendog(platform.Options{})

	// Register tf-Darshan as a profiler tracer. Attachment is lazy: the
	// GOT is patched when the first profiling session starts.
	cfg := core.DefaultTracerConfig()
	cfg.SizeOf = func(p string) (int64, bool) {
		ino, ok := m.FS.Lookup(p)
		if !ok {
			return 0, false
		}
		return ino.Size, true
	}
	handle := core.Register(m.Env, cfg)

	// A small image-like dataset on the HDD tier.
	paths := make([]string, 256)
	for i := range paths {
		paths[i] = fmt.Sprintf("%s/img-%04d.jpg", platform.GreendogHDDPath, i)
		if _, err := m.FS.CreateFile(paths[i], 88*1024); err != nil {
			log.Fatal(err)
		}
	}

	// Train 8 steps with the TensorBoard callback profiling all of them.
	model := workload.MalwareCNN()
	tb := keras.NewTensorBoard(1, 8)
	var hist *keras.History
	m.K.Spawn("main", func(t *sim.Thread) {
		ds := tfdata.FromFiles(m.Env, paths).Shuffle(1).
			Map(workload.StreamMap, 4).Batch(32).Prefetch(4)
		it, err := ds.MakeIterator()
		if err != nil {
			log.Fatal(err)
		}
		hist, err = model.Fit(t, m.Env, it, keras.FitOptions{
			Steps: 8, Callbacks: []keras.Callback{tb},
		})
		if err != nil {
			log.Fatal(err)
		}
	})
	if err := m.K.Run(); err != nil {
		log.Fatal(err)
	}

	// tf-Darshan's in-situ analysis of the profiling window.
	fmt.Println(handle.Last.Summary())
	fmt.Println()

	// The TensorBoard pages, rendered for the terminal.
	pd := &tensorboard.ProfileData{
		Run:            "quickstart",
		History:        hist,
		Analysis:       handle.Last,
		Space:          tb.Space,
		SessionStartNs: tb.Session.StartNs,
	}
	fmt.Println(pd.OverviewText())
	fmt.Println(pd.InputPipelineText())
}
