// TensorBoard server: profile two runs (ImageNet-like with 1 and 8
// threads), then serve the Overview / Input-Pipeline / TraceViewer pages
// and the raw artifacts (trace.json.gz, profile.pb) over HTTP.
//
//	go run ./examples/tensorboard [-addr :6006]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/tensorboard"
	"repro/internal/tf/keras"
	"repro/internal/tf/tfdata"
	"repro/internal/workload"
)

func profiledRun(threads int) *tensorboard.ProfileData {
	m := platform.NewKebnekaise(platform.Options{})
	cfg := core.DefaultTracerConfig()
	cfg.SizeOf = func(p string) (int64, bool) {
		ino, ok := m.FS.Lookup(p)
		if !ok {
			return 0, false
		}
		return ino.Size, true
	}
	handle := core.Register(m.Env, cfg)
	paths := make([]string, 2048)
	for i := range paths {
		paths[i] = fmt.Sprintf("%s/in/img-%05d.jpg", platform.KebnekaiseLustre, i)
		if _, err := m.FS.CreateFile(paths[i], 88*1024); err != nil {
			log.Fatal(err)
		}
	}
	steps := len(paths) / 256
	model := workload.AlexNet()
	tb := keras.NewTensorBoard(1, steps)
	var hist *keras.History
	m.K.Spawn("main", func(t *sim.Thread) {
		ds := tfdata.FromFiles(m.Env, paths).Shuffle(7).
			Map(workload.ImageNetMap, threads).Batch(256).Prefetch(10)
		it, err := ds.MakeIterator()
		if err != nil {
			log.Fatal(err)
		}
		hist, err = model.Fit(t, m.Env, it, keras.FitOptions{
			Steps: steps, Callbacks: []keras.Callback{tb},
		})
		if err != nil {
			log.Fatal(err)
		}
	})
	if err := m.K.Run(); err != nil {
		log.Fatal(err)
	}
	return &tensorboard.ProfileData{
		Run:            fmt.Sprintf("imagenet-%dthreads", threads),
		History:        hist,
		Analysis:       handle.Last,
		Space:          tb.Space,
		SessionStartNs: tb.Session.StartNs,
	}
}

func main() {
	addr := flag.String("addr", ":6006", "listen address")
	flag.Parse()

	runs := map[string]*tensorboard.ProfileData{}
	for _, threads := range []int{1, 8} {
		pd := profiledRun(threads)
		runs[pd.Run] = pd
		fmt.Printf("profiled %s: %.2f MB/s\n", pd.Run, pd.Analysis.ReadBandwidthMBps())
	}
	fmt.Printf("serving TensorBoard-style profile pages on http://localhost%s/\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, tensorboard.NewServer(runs)))
}
