// Checkpoint capture (paper §IV-D / Fig. 6): train with a checkpoint after
// every step and watch Darshan's STDIO module count the fwrite calls that
// TensorFlow's buffered writable files produce — invisible to the POSIX
// module because libc's internal flushes bypass the PLT.
//
//	go run ./examples/checkpoint [-steps 10]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/tf/keras"
	"repro/internal/tf/tfdata"
	"repro/internal/workload"
)

func main() {
	steps := flag.Int("steps", 10, "training steps (one checkpoint per step, all kept)")
	flag.Parse()

	m := platform.NewKebnekaise(platform.Options{})
	handle := core.Register(m.Env, core.DefaultTracerConfig())

	nFiles := *steps * 256
	paths := make([]string, nFiles)
	for i := range paths {
		paths[i] = fmt.Sprintf("%s/in/img-%06d.jpg", platform.KebnekaiseLustre, i)
		if _, err := m.FS.CreateFile(paths[i], 88*1024); err != nil {
			log.Fatal(err)
		}
	}

	model := workload.AlexNet()
	mc := keras.NewModelCheckpoint(platform.KebnekaiseLustre+"/ckpt", 1)
	tb := keras.NewTensorBoard(1, *steps)
	m.K.Spawn("main", func(t *sim.Thread) {
		ds := tfdata.FromFiles(m.Env, paths).
			Map(workload.ImageNetMap, 2).Batch(256).Prefetch(10)
		it, err := ds.MakeIterator()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := model.Fit(t, m.Env, it, keras.FitOptions{
			Steps: *steps, Callbacks: []keras.Callback{mc, tb},
		}); err != nil {
			log.Fatal(err)
		}
	})
	if err := m.K.Run(); err != nil {
		log.Fatal(err)
	}

	a := handle.Last
	fmt.Printf("checkpoints written:      %d (%.1f MB each)\n",
		len(mc.Results), float64(model.ParamBytes())/1e6)
	fmt.Printf("fwrite calls (writer):    %d\n", mc.TotalFwrites())
	fmt.Printf("fwrite calls (Darshan):   %d on the STDIO layer\n", a.StdioWrites)
	fmt.Printf("STDIO bytes written:      %.1f MB\n", float64(a.StdioBytesWritten)/1e6)
	fmt.Printf("POSIX writes observed:    %d (stdio flushes bypass the PLT)\n", a.Writes)
	fmt.Printf("\nthe paper's Fig. 6 reports ~1,400 fwrites for 10 checkpoints\n")
}
