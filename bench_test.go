// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation and reports the headline quantities as benchmark
// metrics. One benchmark per artifact:
//
//	go test -bench=. -benchmem
//
// Benchmarks default to scale 0.2 (a fifth of the paper's dataset sizes
// and step counts) so the suite completes in minutes; set
// TFDARSHAN_BENCH_SCALE=1.0 to run at paper scale. All quantities that are
// ratios or counts-per-file are scale-invariant; EXPERIMENTS.md records
// the full-scale paper-vs-measured comparison.
package repro

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func benchConfig() experiments.Config {
	scale := 0.2
	if s := os.Getenv("TFDARSHAN_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			scale = v
		}
	}
	return experiments.Config{Scale: scale}
}

func runArtifact(b *testing.B, id string) {
	b.Helper()
	runner, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown artifact %s", id)
	}
	cfg := benchConfig()
	var res experiments.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = runner.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for k, v := range res.Metrics() {
		// Benchmark metric units must not contain whitespace; some
		// experiment keys carry workload names ("Kaggle BIG 2015_files").
		b.ReportMetric(v, strings.ReplaceAll(k, " ", "_"))
	}
}

// BenchmarkTable1FeatureMatrix regenerates Table I (feature comparison).
func BenchmarkTable1FeatureMatrix(b *testing.B) { runArtifact(b, "table1") }

// BenchmarkTable2Datasets regenerates Table II (dataset characteristics).
func BenchmarkTable2Datasets(b *testing.B) { runArtifact(b, "table2") }

// BenchmarkFig3StreamImageNet regenerates Fig. 3 (STREAM ImageNet
// bandwidth: dstat vs tf-Darshan).
func BenchmarkFig3StreamImageNet(b *testing.B) { runArtifact(b, "fig3") }

// BenchmarkFig4StreamMalware regenerates Fig. 4 (STREAM malware bandwidth;
// ~10x Fig. 3's).
func BenchmarkFig4StreamMalware(b *testing.B) { runArtifact(b, "fig4") }

// BenchmarkFig5Overhead regenerates Fig. 5 (profiling overhead vs no
// profiler across four workloads).
func BenchmarkFig5Overhead(b *testing.B) { runArtifact(b, "fig5") }

// BenchmarkFig6Checkpoint regenerates Fig. 6 (checkpoint fwrites captured
// on the STDIO layer).
func BenchmarkFig6Checkpoint(b *testing.B) { runArtifact(b, "fig6") }

// BenchmarkFig7aImageNetProfile regenerates Fig. 7a (ImageNet, 1 thread:
// ~3MB/s, 2 reads per file, 50% zero-length).
func BenchmarkFig7aImageNetProfile(b *testing.B) { runArtifact(b, "fig7a") }

// BenchmarkFig7bImageNetThreads regenerates Fig. 7b (28 threads: ~8x
// bandwidth).
func BenchmarkFig7bImageNetThreads(b *testing.B) { runArtifact(b, "fig7b") }

// BenchmarkFig8ZeroReadTimeline regenerates Fig. 8 (TraceViewer extract:
// every file read ends in a zero-length read).
func BenchmarkFig8ZeroReadTimeline(b *testing.B) { runArtifact(b, "fig8") }

// BenchmarkFig9MalwareProfile regenerates Fig. 9 (malware, 1 thread:
// ~94MB/s, reads clustered 100KB-1MB, mostly sequential).
func BenchmarkFig9MalwareProfile(b *testing.B) { runArtifact(b, "fig9") }

// BenchmarkFig10MalwareTimeline regenerates Fig. 10 (ReadFile ops vs POSIX
// segments in the TraceViewer).
func BenchmarkFig10MalwareTimeline(b *testing.B) { runArtifact(b, "fig10") }

// BenchmarkFig11aMalwareThreads regenerates Fig. 11a (16 threads drop
// bandwidth 94 -> 77 MB/s).
func BenchmarkFig11aMalwareThreads(b *testing.B) { runArtifact(b, "fig11a") }

// BenchmarkFig11bStaging regenerates Fig. 11b (staging files <2MB to
// Optane: ~+19% bandwidth from ~8% of bytes).
func BenchmarkFig11bStaging(b *testing.B) { runArtifact(b, "fig11b") }

// BenchmarkFig12DstatComparison regenerates Fig. 12 (whole-run disk
// activity: staged finishes first, 16-thread run last).
func BenchmarkFig12DstatComparison(b *testing.B) { runArtifact(b, "fig12") }

// BenchmarkSuiteSerial regenerates every artifact back to back on one
// worker — the end-to-end wall-clock cost of the full evaluation.
func BenchmarkSuiteSerial(b *testing.B) { runSuite(b, 1) }

// BenchmarkSuiteParallel regenerates every artifact through the parallel
// harness (one worker per core). Kernels share nothing, so the outputs are
// byte-identical to BenchmarkSuiteSerial; the ratio of the two ns/op
// values is the wall-clock speedup the host's cores buy.
func BenchmarkSuiteParallel(b *testing.B) { runSuite(b, -1) }

func runSuite(b *testing.B, parallel int) {
	b.Helper()
	cfg := benchConfig()
	cfg.Parallel = parallel
	var ids []string
	for _, r := range experiments.All() {
		ids = append(ids, r.ID)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAll(cfg, ids); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(ids)), "artifacts")
	b.ReportMetric(float64(experiments.Parallelism(parallel)), "workers")
}

// BenchmarkRanksScaling runs the distributed data-parallel rank sweep
// ({1,2,4,8} ranks sharing one Lustre system): per-rank Darshan logs,
// cross-rank merge, aggregate bandwidth and straggler spread. The merge
// invariant is verified inside the experiment, so contention-path or
// reduction regressions fail here, not just in unit tests.
func BenchmarkRanksScaling(b *testing.B) { runArtifact(b, "ranks") }

// BenchmarkTuneRankAware runs the rank-aware tuning experiment over the
// same rank ladder: untuned 4-threads/rank on shared Lustre vs per-rank
// threads/prefetch picked by cluster probes over the merged profile plus
// each rank's shard staged to its node-local NVMe. The reported
// ranks<N>_epoch_delta_s / ranks<N>_speedup_x metrics land in the
// BENCH_<n>.json perf snapshots, so the tuned-vs-untuned gap is tracked
// per commit. The staging-plan and same-bytes invariants are verified
// inside the experiment.
func BenchmarkTuneRankAware(b *testing.B) { runArtifact(b, "tune") }

// BenchmarkPrefetchEpoch runs the clairvoyant prefetching experiment over
// the rank ladder: two-epoch per-epoch-reshuffled training, cold Lustre vs
// the offline staging plan vs per-node prefetch daemons (without and with
// peer-cache serving) across the cache-capacity ladder. The headline
// prefetch_speedup_vs_staging_x and prefetch_local_hit_rate metrics (plus
// the per-rung epoch times and hit-rate breakdown) land in the
// BENCH_<n>.json perf snapshots. The beats-cold-at-every-rung and
// beats-staging-on-constrained-rungs invariants are verified inside the
// experiment.
func BenchmarkPrefetchEpoch(b *testing.B) { runArtifact(b, "prefetch") }

// BenchmarkFailover runs the failure/recovery experiment over the rank
// ladder: the no-failure baseline vs one mid-epoch rank death with a 2s
// node reboot under the rank-0 and all-ranks checkpoint patterns. The
// headline failover_restore_delta_s metric (plus per-rung epoch times,
// downtime and restore-burst bandwidth) lands in the BENCH_<n>.json perf
// snapshots, so recovery-cost regressions are tracked per commit. The
// restore-reads-after-failure, checkpoint rank-factor and equal-restore-
// bytes invariants are verified inside the experiment.
func BenchmarkFailover(b *testing.B) { runArtifact(b, "failover") }

// BenchmarkElastic runs the elastic continue-on-failure experiment over
// the rank ladder (ranks >= 2): the same mid-epoch rank death recovered by
// checkpoint rollback vs elastically (survivors re-shard the victim's
// remaining work and keep committing steps), at every rung of a
// transient-fault ladder (clean, flaky reads with bounded retries, an
// MDS-brownout/degraded-OST storm). The headline elastic_downtime_delta_s
// and retry_total metrics (plus per-rung rollback/elastic epoch times)
// land in the BENCH_<n>.json perf snapshots. The elastic-beats-rollback,
// no-restore-storm, reads-after-failure and clean-runs-retry-free
// invariants are verified inside the experiment.
func BenchmarkElastic(b *testing.B) { runArtifact(b, "elastic") }

// BenchmarkDataService runs the disaggregated tf.data service experiment:
// per worker-fleet size, a concurrent-job ramp ({4,16,64,256} jobs, each
// an independently shuffled epoch over one shared corpus) served by
// dispatcher-leased data workers through a peer-served NVMe cache tier,
// against the same jobs as independent cold pipelines. The headline
// dataservice_jobs_knee, dataservice_dedup_ratio and
// dataservice_speedup_vs_independent_x metrics (plus per-rung wall times
// and resource utilizations) land in the BENCH_<n>.json perf snapshots.
// The batch-exactness, PFS-bytes-within-[corpus, cold] and
// beats-independent-pipelines invariants are verified inside the
// experiment.
func BenchmarkDataService(b *testing.B) { runArtifact(b, "dataservice") }
