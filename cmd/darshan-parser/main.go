// Command darshan-parser dumps a Darshan binary log in the style of the
// original darshan-parser utility: job header, name records, and per-file
// counters for the POSIX and STDIO modules.
//
// Merged cluster logs (nprocs > 1) are detected from the header: records
// shared across ranks (rank −1, Darshan's shared-record convention) print
// in their own section ahead of the per-rank records.
//
//	darshan-parser [-total] [-perf] <darshan.log>
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/darshan"
)

var errUsage = errors.New("usage: darshan-parser [-total] [-perf] <darshan.log>")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("darshan-parser", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	total := fs.Bool("total", false, "print aggregated counters only (like darshan-parser --total)")
	perf := fs.Bool("perf", false, "print derived performance summary (like darshan-parser --perf)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fmt.Fprintln(w, errUsage.Error())
			fs.SetOutput(w)
			fs.PrintDefaults()
			return nil
		}
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	if fs.NArg() != 1 {
		return errUsage
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	log, err := darshan.ReadLog(f)
	if err != nil {
		return err
	}

	shared := 0
	for i := range log.Posix {
		if log.Posix[i].Rank == darshan.MergedRank {
			shared++
		}
	}
	for i := range log.Stdio {
		if log.Stdio[i].Rank == darshan.MergedRank {
			shared++
		}
	}

	fmt.Fprintf(w, "# darshan log version: %d\n", log.Version)
	fmt.Fprintf(w, "# nprocs: %d\n", log.NProcs)
	fmt.Fprintf(w, "# run time: %.4f s\n", log.JobEnd)
	if log.Merged {
		fmt.Fprintf(w, "# merged cluster log: %d records shared across ranks (rank -1)\n", shared)
	}
	fmt.Fprintf(w, "# POSIX module records: %d\n", len(log.Posix))
	fmt.Fprintf(w, "# STDIO module records: %d\n\n", len(log.Stdio))

	if *perf {
		fmt.Fprint(w, darshan.Summarize(log).Render())
		return nil
	}
	if *total {
		printTotals(w, log)
		return nil
	}

	// Record order: shared records (rank −1) first, then per-rank records
	// by rank; names break all remaining ties. Single-process logs have
	// one rank, so this is the plain name order they always had.
	sortRecords(log)
	if log.Merged {
		fmt.Fprintln(w, "# shared records (rank -1)")
		printModules(w, log, func(rank int) bool { return rank == darshan.MergedRank })
		fmt.Fprintln(w, "# per-rank records")
		printModules(w, log, func(rank int) bool { return rank != darshan.MergedRank })
		return nil
	}
	printModules(w, log, func(int) bool { return true })
	return nil
}

// rankOrder maps ranks to sort position: shared records first.
func rankOrder(rank int) int {
	if rank == darshan.MergedRank {
		return -1 << 30
	}
	return rank
}

func sortRecords(log *darshan.Log) {
	sort.Slice(log.Posix, func(i, j int) bool {
		a, b := &log.Posix[i], &log.Posix[j]
		if a.Rank != b.Rank {
			return rankOrder(a.Rank) < rankOrder(b.Rank)
		}
		return log.Names[a.ID] < log.Names[b.ID]
	})
	sort.Slice(log.Stdio, func(i, j int) bool {
		a, b := &log.Stdio[i], &log.Stdio[j]
		if a.Rank != b.Rank {
			return rankOrder(a.Rank) < rankOrder(b.Rank)
		}
		return log.Names[a.ID] < log.Names[b.ID]
	})
}

// printModules prints the counter lines of every record whose rank the
// filter admits, POSIX module first, in the order sortRecords left.
func printModules(w io.Writer, log *darshan.Log, admit func(rank int) bool) {
	for i := range log.Posix {
		rec := &log.Posix[i]
		if !admit(rec.Rank) {
			continue
		}
		name := log.Names[rec.ID]
		for c := darshan.PosixCounter(0); c < darshan.PosixNumCounters; c++ {
			fmt.Fprintf(w, "POSIX\t%d\t%d\t%s\t%d\t%s\n", rec.Rank, rec.ID, c, rec.Counters[c], name)
		}
		for c := darshan.PosixFCounter(0); c < darshan.PosixNumFCounters; c++ {
			fmt.Fprintf(w, "POSIX\t%d\t%d\t%s\t%.6f\t%s\n", rec.Rank, rec.ID, c, rec.FCounters[c], name)
		}
	}
	for i := range log.Stdio {
		rec := &log.Stdio[i]
		if !admit(rec.Rank) {
			continue
		}
		name := log.Names[rec.ID]
		for c := darshan.StdioCounter(0); c < darshan.StdioNumCounters; c++ {
			fmt.Fprintf(w, "STDIO\t%d\t%d\t%s\t%d\t%s\n", rec.Rank, rec.ID, c, rec.Counters[c], name)
		}
		for c := darshan.StdioFCounter(0); c < darshan.StdioNumFCounters; c++ {
			fmt.Fprintf(w, "STDIO\t%d\t%d\t%s\t%.6f\t%s\n", rec.Rank, rec.ID, c, rec.FCounters[c], name)
		}
	}
}

func printTotals(w io.Writer, log *darshan.Log) {
	var posix [darshan.PosixNumCounters]int64
	for i := range log.Posix {
		for c := range posix {
			posix[c] += log.Posix[i].Counters[c]
		}
	}
	for c := darshan.PosixCounter(0); c < darshan.PosixNumCounters; c++ {
		fmt.Fprintf(w, "total_%s: %d\n", c, posix[c])
	}
	var stdio [darshan.StdioNumCounters]int64
	for i := range log.Stdio {
		for c := range stdio {
			stdio[c] += log.Stdio[i].Counters[c]
		}
	}
	for c := darshan.StdioCounter(0); c < darshan.StdioNumCounters; c++ {
		fmt.Fprintf(w, "total_%s: %d\n", c, stdio[c])
	}
}
