// Command darshan-parser dumps a Darshan binary log in the style of the
// original darshan-parser utility: job header, name records, and per-file
// counters for the POSIX and STDIO modules.
//
//	darshan-parser [-total] <darshan.log>
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/darshan"
)

func main() {
	total := flag.Bool("total", false, "print aggregated counters only (like darshan-parser --total)")
	perf := flag.Bool("perf", false, "print derived performance summary (like darshan-parser --perf)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: darshan-parser [-total] [-perf] <darshan.log>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	log, err := darshan.ParseLog(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("# darshan log version: %d\n", log.Version)
	fmt.Printf("# nprocs: %d\n", log.NProcs)
	fmt.Printf("# run time: %.4f s\n", log.JobEnd)
	fmt.Printf("# POSIX module records: %d\n", len(log.Posix))
	fmt.Printf("# STDIO module records: %d\n\n", len(log.Stdio))

	if *perf {
		fmt.Print(darshan.Summarize(log).Render())
		return
	}
	if *total {
		printTotals(log)
		return
	}

	sort.Slice(log.Posix, func(i, j int) bool {
		return log.Names[log.Posix[i].ID] < log.Names[log.Posix[j].ID]
	})
	for i := range log.Posix {
		rec := &log.Posix[i]
		name := log.Names[rec.ID]
		for c := darshan.PosixCounter(0); c < darshan.PosixNumCounters; c++ {
			fmt.Printf("POSIX\t%d\t%d\t%s\t%d\t%s\n", rec.Rank, rec.ID, c, rec.Counters[c], name)
		}
		for c := darshan.PosixFCounter(0); c < darshan.PosixNumFCounters; c++ {
			fmt.Printf("POSIX\t%d\t%d\t%s\t%.6f\t%s\n", rec.Rank, rec.ID, c, rec.FCounters[c], name)
		}
	}
	sort.Slice(log.Stdio, func(i, j int) bool {
		return log.Names[log.Stdio[i].ID] < log.Names[log.Stdio[j].ID]
	})
	for i := range log.Stdio {
		rec := &log.Stdio[i]
		name := log.Names[rec.ID]
		for c := darshan.StdioCounter(0); c < darshan.StdioNumCounters; c++ {
			fmt.Printf("STDIO\t%d\t%d\t%s\t%d\t%s\n", rec.Rank, rec.ID, c, rec.Counters[c], name)
		}
		for c := darshan.StdioFCounter(0); c < darshan.StdioNumFCounters; c++ {
			fmt.Printf("STDIO\t%d\t%d\t%s\t%.6f\t%s\n", rec.Rank, rec.ID, c, rec.FCounters[c], name)
		}
	}
}

func printTotals(log *darshan.Log) {
	var posix [darshan.PosixNumCounters]int64
	for i := range log.Posix {
		for c := range posix {
			posix[c] += log.Posix[i].Counters[c]
		}
	}
	for c := darshan.PosixCounter(0); c < darshan.PosixNumCounters; c++ {
		fmt.Printf("total_%s: %d\n", c, posix[c])
	}
	var stdio [darshan.StdioNumCounters]int64
	for i := range log.Stdio {
		for c := range stdio {
			stdio[c] += log.Stdio[i].Counters[c]
		}
	}
	for c := darshan.StdioCounter(0); c < darshan.StdioNumCounters; c++ {
		fmt.Printf("total_%s: %d\n", c, stdio[c])
	}
}
