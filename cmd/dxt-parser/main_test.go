package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden stdout transcripts under testdata/ from
// the committed reference logs (go test ./cmd/dxt-parser -update).
var update = flag.Bool("update", false, "rewrite testdata golden files")

const (
	singleLog = "../../internal/darshan/testdata/single.darshan.log"
	mergedLog = "../../internal/experiments/testdata/merged4.darshan.log"
)

func runGolden(t *testing.T, name string, args []string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (regenerate with: go test ./cmd/dxt-parser -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("%s: parser output drifted from testdata/%s.golden; re-run with -update if intentional", name, name)
	}
	return buf.String()
}

func TestGoldenSingle(t *testing.T) {
	out := runGolden(t, "single", []string{singleLog})
	if strings.Contains(out, "[rank=") {
		t.Fatal("single log printed rank attribution")
	}
	if !strings.Contains(out, "X_POSIX\tread\t[tid=") {
		t.Fatal("single log printed no read segments")
	}
}

func TestGoldenSingleLimit(t *testing.T) {
	out := runGolden(t, "single_limit2", []string{"-limit", "2", singleLog})
	if !strings.Contains(out, "more segments") {
		t.Fatal("limit did not truncate")
	}
}

// TestGoldenMerged is the acceptance transcript for DXT: the ranks=4
// merged log prints every segment with its owning rank, files list the
// ranks that touched them, and the shared manifest shows all four.
func TestGoldenMerged(t *testing.T) {
	out := runGolden(t, "merged4", []string{mergedLog})
	for _, want := range []string{
		"# DXT merged timeline: nprocs 4,",
		"ranks: 0,1,2,3",
		"[rank=0]",
		"[rank=3]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged transcript missing %q", want)
		}
	}
}

func TestUsageAndErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("no-arg run succeeded")
	}
	if err := run([]string{"main_test.go"}, &buf); err == nil {
		t.Fatal("parsing a non-log succeeded")
	}
	// -h prints flag help and succeeds (exit 0), as flag.ExitOnError did.
	buf.Reset()
	if err := run([]string{"-h"}, &buf); err != nil {
		t.Fatalf("-h: %v", err)
	}
	if !strings.Contains(buf.String(), "-limit") {
		t.Fatalf("-h output missing flag docs:\n%s", buf.String())
	}
}
