// Command dxt-parser dumps the DXT (Darshan eXtended Tracing) segments of
// a Darshan log in the style of darshan-dxt-parser: per file, every read
// and write with its offset, length and time window.
//
//	dxt-parser [-limit n] <darshan.log>
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/darshan"
)

func main() {
	limit := flag.Int("limit", 0, "max segments to print per file and direction (0 = all)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dxt-parser [-limit n] <darshan.log>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	log, err := darshan.ParseLog(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sort.Slice(log.DXT, func(i, j int) bool {
		return log.Names[log.DXT[i].ID] < log.Names[log.DXT[j].ID]
	})
	var totalSegs, totalDropped int64
	for i := range log.DXT {
		rec := &log.DXT[i]
		name := log.Names[rec.ID]
		fmt.Printf("# DXT, file_id: %d, file_name: %s\n", rec.ID, name)
		fmt.Printf("# DXT, write_count: %d, read_count: %d, dropped: %d\n",
			len(rec.WriteSegs), len(rec.ReadSegs), rec.Dropped)
		printSegs("X_POSIX\twrite", rec.WriteSegs, *limit)
		printSegs("X_POSIX\tread", rec.ReadSegs, *limit)
		totalSegs += int64(len(rec.ReadSegs) + len(rec.WriteSegs))
		totalDropped += rec.Dropped
	}
	fmt.Printf("# total segments: %d (dropped %d)\n", totalSegs, totalDropped)
}

func printSegs(prefix string, segs []darshan.Segment, limit int) {
	n := len(segs)
	if limit > 0 && n > limit {
		n = limit
	}
	for i := 0; i < n; i++ {
		s := segs[i]
		fmt.Printf("%s\t[tid=%d]\toffset=%d\tlength=%d\tstart=%.6f\tend=%.6f\n",
			prefix, s.TID, s.Offset, s.Length, s.Start, s.End)
	}
	if n < len(segs) {
		fmt.Printf("%s\t... %d more segments\n", prefix, len(segs)-n)
	}
}
