// Command dxt-parser dumps the DXT (Darshan eXtended Tracing) segments of
// a Darshan log in the style of darshan-dxt-parser: per file, every read
// and write with its offset, length and time window.
//
// Merged cluster logs (nprocs > 1) store one flat rank-attributed
// timeline; dxt-parser groups it back per file and prints every segment
// with its owning rank, preserving the global start-time order within
// each direction.
//
//	dxt-parser [-limit n] <darshan.log>
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/darshan"
)

var errUsage = errors.New("usage: dxt-parser [-limit n] <darshan.log>")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dxt-parser", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	limit := fs.Int("limit", 0, "max segments to print per file and direction (0 = all)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fmt.Fprintln(w, errUsage.Error())
			fs.SetOutput(w)
			fs.PrintDefaults()
			return nil
		}
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	if fs.NArg() != 1 {
		return errUsage
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	log, err := darshan.ReadLog(f)
	if err != nil {
		return err
	}
	if log.Merged {
		printMerged(w, log, *limit)
		return nil
	}
	printSingle(w, log, *limit)
	return nil
}

func printSingle(w io.Writer, log *darshan.Log, limit int) {
	sort.Slice(log.DXT, func(i, j int) bool {
		return log.Names[log.DXT[i].ID] < log.Names[log.DXT[j].ID]
	})
	var totalSegs, totalDropped int64
	for i := range log.DXT {
		rec := &log.DXT[i]
		name := log.Names[rec.ID]
		fmt.Fprintf(w, "# DXT, file_id: %d, file_name: %s\n", rec.ID, name)
		fmt.Fprintf(w, "# DXT, write_count: %d, read_count: %d, dropped: %d\n",
			len(rec.WriteSegs), len(rec.ReadSegs), rec.Dropped)
		printSegs(w, "X_POSIX\twrite", rec.WriteSegs, limit)
		printSegs(w, "X_POSIX\tread", rec.ReadSegs, limit)
		totalSegs += int64(len(rec.ReadSegs) + len(rec.WriteSegs))
		totalDropped += rec.Dropped
	}
	fmt.Fprintf(w, "# total segments: %d (dropped %d)\n", totalSegs, totalDropped)
}

func printSegs(w io.Writer, prefix string, segs []darshan.Segment, limit int) {
	n := len(segs)
	if limit > 0 && n > limit {
		n = limit
	}
	for i := 0; i < n; i++ {
		s := segs[i]
		fmt.Fprintf(w, "%s\t[tid=%d]\toffset=%d\tlength=%d\tstart=%.6f\tend=%.6f\n",
			prefix, s.TID, s.Offset, s.Length, s.Start, s.End)
	}
	if n < len(segs) {
		fmt.Fprintf(w, "%s\t... %d more segments\n", prefix, len(segs)-n)
	}
}

// mergedFile regroups a file's slice of the global timeline, directions
// split as in the single-process output, order preserved (globally sorted
// by start time by the merger).
type mergedFile struct {
	id     uint64
	name   string
	reads  []darshan.MergedSegment
	writes []darshan.MergedSegment
	ranks  map[int]bool
}

func printMerged(w io.Writer, log *darshan.Log, limit int) {
	files := map[uint64]*mergedFile{}
	for _, s := range log.Timeline {
		mf := files[s.ID]
		if mf == nil {
			mf = &mergedFile{id: s.ID, name: log.Names[s.ID], ranks: map[int]bool{}}
			files[s.ID] = mf
		}
		mf.ranks[s.Rank] = true
		if s.Write {
			mf.writes = append(mf.writes, s)
		} else {
			mf.reads = append(mf.reads, s)
		}
	}
	ordered := make([]*mergedFile, 0, len(files))
	for _, mf := range files {
		ordered = append(ordered, mf)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].name != ordered[j].name {
			return ordered[i].name < ordered[j].name
		}
		return ordered[i].id < ordered[j].id
	})

	fmt.Fprintf(w, "# DXT merged timeline: nprocs %d, files %d, segments %d\n",
		log.NProcs, len(ordered), len(log.Timeline))
	var totalSegs int64
	for _, mf := range ordered {
		fmt.Fprintf(w, "# DXT, file_id: %d, file_name: %s\n", mf.id, mf.name)
		fmt.Fprintf(w, "# DXT, write_count: %d, read_count: %d, ranks: %s\n",
			len(mf.writes), len(mf.reads), rankList(mf.ranks))
		printMergedSegs(w, "X_POSIX\twrite", mf.writes, limit)
		printMergedSegs(w, "X_POSIX\tread", mf.reads, limit)
		totalSegs += int64(len(mf.reads) + len(mf.writes))
	}
	fmt.Fprintf(w, "# total segments: %d (dropped %d)\n", totalSegs, log.DroppedSegments)
}

func printMergedSegs(w io.Writer, prefix string, segs []darshan.MergedSegment, limit int) {
	n := len(segs)
	if limit > 0 && n > limit {
		n = limit
	}
	for i := 0; i < n; i++ {
		s := segs[i]
		fmt.Fprintf(w, "%s\t[rank=%d]\t[tid=%d]\toffset=%d\tlength=%d\tstart=%.6f\tend=%.6f\n",
			prefix, s.Rank, s.TID, s.Offset, s.Length, s.Start, s.End)
	}
	if n < len(segs) {
		fmt.Fprintf(w, "%s\t... %d more segments\n", prefix, len(segs)-n)
	}
}

// rankList renders the sorted set of ranks that touched a file.
func rankList(ranks map[int]bool) string {
	rs := make([]int, 0, len(ranks))
	for r := range ranks {
		rs = append(rs, r)
	}
	sort.Ints(rs)
	var b strings.Builder
	for i, r := range rs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", r)
	}
	return b.String()
}
