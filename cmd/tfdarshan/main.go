// Command tfdarshan regenerates the paper's tables and figures and
// produces profiling artifacts for the companion tools.
//
// Usage:
//
//	tfdarshan list
//	tfdarshan run [-scale f] <id>...       (ids: table1 table2 fig3 ... fig12, or "all")
//	tfdarshan metrics [-scale f] <id>...   (metrics only, no figure body)
//	tfdarshan artifacts [-scale f] [-out dir] <imagenet|malware|distributed>
//	    writes darshan.log, trace.json.gz and profile.pb from a profiled
//	    run (inputs for darshan-parser, dxt-parser and traceviewer);
//	    "distributed" runs the data-parallel cluster job ([-ranks n],
//	    default 4) and writes the merged darshan.log plus per-rank
//	    darshan-rank<r>.log files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"time"

	"repro/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scale := fs.Float64("scale", 1.0, "dataset/step scale factor (1.0 = paper scale)")
	seed := fs.Int64("seed", 0, "shuffle seed perturbation")
	verify := fs.Bool("verify", false, "materialize and checksum all read content (slow; validates the zero-materialization fast path)")
	ranks := fs.Int("ranks", 0, "pin the distributed 'ranks'/'tune' experiments to one rank count (0 = sweep 1,2,4,8)")
	tune := fs.Bool("tune", false, "run the rank-aware tuning experiment (adds 'tune' to the id list)")
	prefetchFlag := fs.Bool("prefetch", false, "run the clairvoyant prefetching experiment (adds 'prefetch' to the id list)")
	failoverFlag := fs.Bool("failover", false, "run the failure/recovery experiment (adds 'failover' to the id list)")
	elasticFlag := fs.Bool("elastic", false, "run the elastic-vs-rollback fault-ladder experiment (adds 'elastic' to the id list)")
	dataserviceFlag := fs.Bool("dataservice", false, "run the disaggregated tf.data service experiment (adds 'dataservice' to the id list)")
	parallel := fs.Int("parallel", 1, "simulation kernels to run concurrently on host CPUs (0 = one per core; results are byte-identical at any setting)")
	outDir := fs.String("out", ".", "artifact output directory")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if *ranks < 0 {
		fmt.Fprintf(os.Stderr, "invalid -ranks %d\n", *ranks)
		os.Exit(2)
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed, VerifyContent: *verify, Ranks: *ranks}
	if *parallel == 0 {
		cfg.Parallel = -1 // one worker per core
	} else {
		cfg.Parallel = *parallel
	}

	switch cmd {
	case "artifacts":
		if fs.NArg() != 1 {
			usage()
			os.Exit(2)
		}
		if err := writeArtifacts(cfg, fs.Arg(0), *outDir); err != nil {
			fmt.Fprintf(os.Stderr, "artifacts: %v\n", err)
			os.Exit(1)
		}
	case "list":
		for _, r := range experiments.All() {
			fmt.Printf("  %-8s %s\n", r.ID, r.Description)
		}
	case "run", "metrics":
		ids := fs.Args()
		if len(ids) == 1 && ids[0] == "all" {
			ids = nil
			for _, r := range experiments.All() {
				ids = append(ids, r.ID)
			}
		}
		if *tune && !slices.Contains(ids, "tune") {
			ids = append(ids, "tune")
		}
		if *prefetchFlag && !slices.Contains(ids, "prefetch") {
			ids = append(ids, "prefetch")
		}
		if *failoverFlag && !slices.Contains(ids, "failover") {
			ids = append(ids, "failover")
		}
		if *elasticFlag && !slices.Contains(ids, "elastic") {
			ids = append(ids, "elastic")
		}
		if *dataserviceFlag && !slices.Contains(ids, "dataservice") {
			ids = append(ids, "dataservice")
		}
		if len(ids) == 0 {
			usage()
			os.Exit(2)
		}
		for _, id := range ids {
			if _, ok := experiments.Find(id); !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try: tfdarshan list)\n", id)
				os.Exit(1)
			}
		}
		start := time.Now() //lint:allow wallclock host-side elapsed time of the run itself, never enters sim results
		print := func(id string, res experiments.Result) {
			runner, _ := experiments.Find(id)
			fmt.Printf("==== %s — %s (scale %.3f) ====\n",
				runner.ID, runner.Description, cfg.Scale)
			if cmd == "run" {
				fmt.Println(res.Render())
			}
			fmt.Println("metrics:")
			fmt.Print(experiments.RenderMetrics(res.Metrics()))
			fmt.Println()
		}
		if experiments.Parallelism(cfg.Parallel) <= 1 {
			// Serial: stream each artifact as it completes.
			for _, id := range ids {
				runner, _ := experiments.Find(id)
				res, err := runner.Run(cfg)
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
					os.Exit(1)
				}
				print(id, res)
			}
		} else {
			results, err := experiments.RunAll(cfg, ids)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(1)
			}
			for i, res := range results {
				print(ids[i], res)
			}
		}
		fmt.Printf("ran %d artifact(s) in %.1fs real (parallel=%d)\n",
			len(ids), time.Since(start).Seconds(), experiments.Parallelism(cfg.Parallel)) //lint:allow wallclock reports real host time to the operator, never enters sim results
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tfdarshan list
  tfdarshan run       [-scale f] [-seed n] [-verify] [-ranks n] [-tune] [-prefetch] [-failover] [-elastic] [-dataservice] [-parallel n] <id>...|all
  tfdarshan metrics   [-scale f] [-seed n] [-verify] [-ranks n] [-tune] [-prefetch] [-failover] [-elastic] [-dataservice] [-parallel n] <id>...|all
  tfdarshan artifacts [-scale f] [-ranks n] [-out dir] <imagenet|malware|distributed>

the "ranks" experiment shards ImageNet over N data-parallel ranks on one
shared Lustre system; -ranks pins it to a single rank count

-tune (or the "tune" id) runs the rank-aware autotuning experiment: the
untuned 4-threads/rank baseline vs. per-rank threads/prefetch picked by
cluster-wide probes over the merged Darshan profile, with each rank's
small-file shard staged to its node-local NVMe (e.g. "tfdarshan run
-tune -ranks 4")

-prefetch (or the "prefetch" id) runs the clairvoyant prefetching
experiment: per-node daemons walk each rank's seeded per-epoch shard order
ahead of the consumer, filling a bounded node NVMe cache (with peer-cache
serving over the interconnect), swept over a cache-capacity ladder against
the cold-Lustre and offline-staging baselines

-failover (or the "failover" id) runs the failure/recovery experiment:
one rank dies mid-epoch, its node reboots with cold caches and a fresh
Darshan runtime, and every rank rolls back to the last checkpoint and
fires a restore read burst at the shared PFS — compared against the
no-failure baseline and the all-ranks checkpoint pattern, with the burst
visible on the merged DXT timeline

-elastic (or the "elastic" id) runs the elastic continue-on-failure
experiment: the same mid-epoch rank death is recovered once by rollback
and once elastically (survivors re-shard the victim's remaining work and
keep committing steps while the reborn rank catches up alone), under a
ladder of injected transient faults (flaky reads with bounded retries, an
MDS brownout, a degraded-OST window) — elastic must beat rollback on
wall time at every rung

-dataservice (or the "dataservice" id) runs the disaggregated tf.data
service experiment: a dispatcher admits concurrent training jobs and
leases per-job shards to a fleet of data workers that read, decode and
batch on the jobs' behalf over shared Lustre through a peer-served node
NVMe cache tier, ramping jobs {4,16,64,256} per fleet size and reporting
which resource saturates first (PFS bandwidth, shared MDS, cache tier,
dispatcher), against the same jobs run as independent cold pipelines;
-ranks pins the fleet size

"artifacts distributed" runs the cluster job at -ranks ranks (default 4)
and writes the merged darshan.log (nprocs > 1, rank -1 shared records,
rank-attributed DXT timeline) plus one darshan-rank<r>.log per rank

-parallel runs independent artifacts (and sweep points inside ranks, fig5
and fig12) concurrently on host CPUs; 0 uses one worker per core. Outputs
are byte-identical to a serial run — kernels share nothing.`)
}

// writeArtifacts runs a profiled case study and writes the Darshan log,
// trace.json.gz and profile.pb for the companion tools. The distributed
// use case writes the merged cluster log plus one darshan-rank<r>.log per
// rank instead of the trace/profile pair.
func writeArtifacts(cfg experiments.Config, useCase, dir string) error {
	art, err := experiments.ProduceArtifacts(cfg, useCase)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	type out struct {
		name string
		data []byte
	}
	files := []out{
		{"darshan.log", art.DarshanLog},
		{"trace.json.gz", art.TraceJSONGz},
		{"profile.pb", art.ProfilePB},
	}
	for r, log := range art.PerRankLogs {
		files = append(files, out{fmt.Sprintf("darshan-rank%d.log", r), log})
	}
	for _, f := range files {
		if f.data == nil {
			continue
		}
		p := filepath.Join(dir, f.name)
		if err := os.WriteFile(p, f.data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", p, len(f.data))
	}
	return nil
}
