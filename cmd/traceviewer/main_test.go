package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tf/profiler"
	"repro/internal/trace"
)

// -update regenerates the golden stdout transcripts under testdata/ from
// the committed reference logs (go test ./cmd/traceviewer -update).
var update = flag.Bool("update", false, "rewrite testdata golden files")

const (
	singleLog   = "../../internal/darshan/testdata/single.darshan.log"
	mergedLog   = "../../internal/experiments/testdata/merged4.darshan.log"
	failoverLog = "../../internal/experiments/testdata/failover2.darshan.log"
)

func runGolden(t *testing.T, name string, args []string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (regenerate with: go test ./cmd/traceviewer -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("%s: viewer output drifted from testdata/%s.golden; re-run with -update if intentional", name, name)
	}
	return buf.String()
}

// writeTraceFixture writes a deterministic two-thread trace.json.gz into
// a temp dir and returns its path — the input for the trace-format
// golden. Built from an XSpace so it exercises the same conversion the
// profiler export uses.
func writeTraceFixture(t *testing.T) string {
	t.Helper()
	space := &profiler.XSpace{Planes: []*profiler.XPlane{{
		Name: "/host:CPU",
		Lines: []*profiler.XLine{
			{ID: 1, Name: "tf_data_iterator", Events: []profiler.XEvent{
				{Name: "IteratorGetNext", StartNs: 1_000_000, DurNs: 2_000_000},
				{Name: "IteratorGetNext", StartNs: 4_000_000, DurNs: 1_000_000},
				{Name: "IteratorGetNext", StartNs: 6_000_000, DurNs: 3_000_000},
			}},
			{ID: 2, Name: "posix_io", Events: []profiler.XEvent{
				{Name: "read", StartNs: 1_200_000, DurNs: 500_000},
			}},
		},
	}}}
	f := trace.FromXSpace(space, 0)
	p := filepath.Join(t.TempDir(), "trace.json.gz")
	out, err := os.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := f.WriteJSONGz(out); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGoldenMergedLanes(t *testing.T) {
	out := runGolden(t, "merged4_lanes", []string{mergedLog})
	for _, want := range []string{
		"=== darshan merged log: nprocs 4,",
		"rank 0 |",
		"rank 3 |",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged lane view missing %q:\n%s", want, out)
		}
	}
}

// TestGoldenFailoverLanes is the acceptance transcript for the failure
// path: on the committed failover log (rank 1 dies mid-epoch, 2s reboot,
// rollback to the step-2 checkpoint) the victim's lane must report an
// idle gap at least as long as the reboot delay, and both ranks must
// show read and write activity (shard reads, checkpoint writes, restore
// reads).
func TestGoldenFailoverLanes(t *testing.T) {
	out := runGolden(t, "failover2_lanes", []string{failoverLog})
	if !strings.Contains(out, "=== darshan merged log: nprocs 2,") {
		t.Fatalf("failover lane view missing header:\n%s", out)
	}
	victim := laneDetail(t, out, 1)
	gap := gapSeconds(t, victim)
	if gap < 2.0 {
		t.Fatalf("victim rank 1 largest gap %.3fs, want >= 2s reboot downtime:\n%s", gap, out)
	}
	survivor := laneDetail(t, out, 0)
	if gapSeconds(t, survivor) >= gap {
		t.Fatalf("survivor rank 0 gap not smaller than victim's:\n%s", out)
	}
	// Under the rank-0 checkpoint pattern, rank 0 carries the checkpoint
	// writes; both ranks carry shard + restore reads.
	if strings.Contains(survivor, "write 0.0KB") {
		t.Fatalf("rank 0 lane missing checkpoint writes: %s", survivor)
	}
	if !strings.Contains(victim, "write 0.0KB") {
		t.Fatalf("rank 1 wrote under the rank-0 pattern: %s", victim)
	}
	for rank, detail := range map[int]string{0: survivor, 1: victim} {
		if strings.Contains(detail, "read 0.0KB") {
			t.Fatalf("rank %d lane missing reads: %s", rank, detail)
		}
	}
}

// laneDetail returns the stats line printed under "rank <r> |...|".
func laneDetail(t *testing.T, out string, rank int) string {
	t.Helper()
	lines := strings.Split(out, "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "rank "+string(rune('0'+rank))+" |") && i+1 < len(lines) {
			return lines[i+1]
		}
	}
	t.Fatalf("no lane for rank %d:\n%s", rank, out)
	return ""
}

// gapSeconds extracts the "largest gap <s>s" figure from a lane detail.
func gapSeconds(t *testing.T, detail string) float64 {
	t.Helper()
	const marker = "largest gap "
	i := strings.Index(detail, marker)
	if i < 0 {
		t.Fatalf("lane detail has no gap: %s", detail)
	}
	var gap float64
	if _, err := fmt.Sscanf(detail[i+len(marker):], "%f", &gap); err != nil {
		t.Fatalf("unparseable gap in %q: %v", detail, err)
	}
	return gap
}

func TestGoldenSingleLanes(t *testing.T) {
	out := runGolden(t, "single_lanes", []string{"-cols", "48", singleLog})
	if !strings.Contains(out, "=== darshan single log: nprocs 1,") {
		t.Fatalf("single lane view missing header:\n%s", out)
	}
	if !strings.Contains(out, "rank 0 |") {
		t.Fatalf("single lane view missing lane:\n%s", out)
	}
}

// TestGoldenTraceJSON pins the legacy trace.json.gz rendering through the
// same run() entry point: a deterministic two-thread document written by
// the trace package itself.
func TestGoldenTraceJSON(t *testing.T) {
	path := writeTraceFixture(t)
	out := runGolden(t, "trace_small", []string{"-limit", "2", path})
	for _, want := range []string{
		"=== process 1: ",
		"-- thread ",
		"more events",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace view missing %q:\n%s", want, out)
		}
	}
}

func TestUsageAndErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("no-arg run succeeded")
	}
	if err := run([]string{"-cols", "0", failoverLog}, &buf); err == nil {
		t.Fatal("-cols 0 accepted")
	}
	if err := run([]string{"main_test.go"}, &buf); err == nil {
		t.Fatal("viewing a non-artifact succeeded")
	}
	if err := run([]string{"testdata/no-such-file"}, &buf); err == nil {
		t.Fatal("viewing a missing file succeeded")
	}
	// -h prints flag help and succeeds (exit 0).
	buf.Reset()
	if err := run([]string{"-h"}, &buf); err != nil {
		t.Fatalf("-h: %v", err)
	}
	for _, want := range []string{"-limit", "-cols"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("-h output missing %s docs:\n%s", want, buf.String())
		}
	}
}

// TestTruncatedDarshanLogErrors: a log cut mid-stream must error through
// the streaming path, not render a partial view.
func TestTruncatedDarshanLogErrors(t *testing.T) {
	full, err := os.ReadFile(failoverLog)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "trunc.darshan.log")
	if err := os.WriteFile(p, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{p}, &buf); err == nil {
		t.Fatal("truncated darshan log rendered without error")
	}
}
