// Command traceviewer renders a trace.json.gz document as text: events per
// process/thread in time order — a terminal stand-in for TensorBoard's
// TraceViewer (the Figs. 8/10 views).
//
//	traceviewer [-limit n] <trace.json.gz>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/trace"
)

// rawEvent mirrors the union of event and metadata records.
type rawEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]string `json:"args"`
}

func main() {
	limit := flag.Int("limit", 20, "max events to print per thread (0 = all)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceviewer [-limit n] <trace.json.gz>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	doc, err := trace.ReadJSONGz(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	procNames := map[int]string{}
	threadNames := map[[2]int64]string{}
	byThread := map[[2]int64][]rawEvent{}
	for _, raw := range doc.TraceEvents {
		var ev rawEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			continue
		}
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			procNames[ev.PID] = ev.Args["name"]
		case ev.Ph == "M" && ev.Name == "thread_name":
			threadNames[[2]int64{int64(ev.PID), ev.TID}] = ev.Args["name"]
		case ev.Ph == "X":
			key := [2]int64{int64(ev.PID), ev.TID}
			byThread[key] = append(byThread[key], ev)
		}
	}

	keys := make([][2]int64, 0, len(byThread))
	for k := range byThread {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	lastPID := int64(-1)
	for _, k := range keys {
		if k[0] != lastPID {
			fmt.Printf("=== process %d: %s ===\n", k[0], procNames[int(k[0])])
			lastPID = k[0]
		}
		fmt.Printf("  -- thread %d: %s\n", k[1], threadNames[k])
		evs := byThread[k]
		sort.Slice(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
		n := len(evs)
		if *limit > 0 && n > *limit {
			n = *limit
		}
		for i := 0; i < n; i++ {
			ev := evs[i]
			fmt.Printf("     [%12.3fms +%9.3fms] %s", ev.TS/1e3, ev.Dur/1e3, ev.Name)
			argKeys := make([]string, 0, len(ev.Args))
			for a := range ev.Args {
				argKeys = append(argKeys, a)
			}
			sort.Strings(argKeys)
			for _, a := range argKeys {
				fmt.Printf(" %s=%s", a, ev.Args[a])
			}
			fmt.Println()
		}
		if n < len(evs) {
			fmt.Printf("     ... %d more events\n", len(evs)-n)
		}
	}
}
