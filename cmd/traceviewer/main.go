// Command traceviewer renders profiling artifacts as text — a terminal
// stand-in for TensorBoard's TraceViewer (the Figs. 8/10 views).
//
// Two input formats, told apart by their magic bytes:
//
//   - trace.json.gz: events per process/thread in time order;
//   - darshan.log (single or merged kind): one activity lane per rank,
//     streamed from the log without materializing it — each lane is the
//     rank's read/write activity over the job, so a failed rank's
//     downtime gap and the cluster-wide restore read burst that follows
//     are visible at a glance.
//
//	traceviewer [-limit n] [-cols n] <trace.json.gz | darshan.log>
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/darshan"
	"repro/internal/trace"
)

var errUsage = errors.New("usage: traceviewer [-limit n] [-cols n] <trace.json.gz | darshan.log>")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("traceviewer", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	limit := fs.Int("limit", 20, "max events to print per thread (0 = all; trace.json.gz input)")
	cols := fs.Int("cols", 64, "lane width in columns (darshan.log input)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fmt.Fprintln(w, errUsage.Error())
			fs.SetOutput(w)
			fs.PrintDefaults()
			return nil
		}
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	if fs.NArg() != 1 || *cols < 1 {
		return errUsage
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	prefix, err := br.Peek(8)
	if err != nil && err != io.EOF {
		return err
	}
	if darshan.IsLogData(prefix) {
		return renderDarshan(w, br, *cols)
	}
	doc, err := trace.ReadJSONGz(br)
	if err != nil {
		return err
	}
	renderTrace(w, doc, *limit)
	return nil
}

// rawEvent mirrors the union of event and metadata records.
type rawEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]string `json:"args"`
}

func renderTrace(w io.Writer, doc *trace.File, limit int) {
	procNames := map[int]string{}
	threadNames := map[[2]int64]string{}
	byThread := map[[2]int64][]rawEvent{}
	for _, raw := range doc.TraceEvents {
		var ev rawEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			continue
		}
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			procNames[ev.PID] = ev.Args["name"]
		case ev.Ph == "M" && ev.Name == "thread_name":
			threadNames[[2]int64{int64(ev.PID), ev.TID}] = ev.Args["name"]
		case ev.Ph == "X":
			key := [2]int64{int64(ev.PID), ev.TID}
			byThread[key] = append(byThread[key], ev)
		}
	}

	keys := make([][2]int64, 0, len(byThread))
	for k := range byThread {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	lastPID := int64(-1)
	for _, k := range keys {
		if k[0] != lastPID {
			fmt.Fprintf(w, "=== process %d: %s ===\n", k[0], procNames[int(k[0])])
			lastPID = k[0]
		}
		fmt.Fprintf(w, "  -- thread %d: %s\n", k[1], threadNames[k])
		evs := byThread[k]
		sort.Slice(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
		n := len(evs)
		if limit > 0 && n > limit {
			n = limit
		}
		for i := 0; i < n; i++ {
			ev := evs[i]
			fmt.Fprintf(w, "     [%12.3fms +%9.3fms] %s", ev.TS/1e3, ev.Dur/1e3, ev.Name)
			argKeys := make([]string, 0, len(ev.Args))
			for a := range ev.Args {
				argKeys = append(argKeys, a)
			}
			sort.Strings(argKeys)
			for _, a := range argKeys {
				fmt.Fprintf(w, " %s=%s", a, ev.Args[a])
			}
			fmt.Fprintln(w)
		}
		if n < len(evs) {
			fmt.Fprintf(w, "     ... %d more events\n", len(evs)-n)
		}
	}
}

// lane accumulates one rank's streamed timeline statistics: a bucketed
// activity strip plus counters. Constant memory per rank regardless of
// segment count.
type lane struct {
	cells      []byte // bitmask per column: 1=read, 2=write
	segs       int64
	readBytes  int64
	writeBytes int64
	firstStart float64
	lastEnd    float64
	// prevEnd/maxGap track the largest idle window between consecutive
	// segments (the timeline is globally start-ordered, so per-rank
	// arrivals are start-ordered too). A dead node's reboot shows up
	// here.
	prevEnd     float64
	maxGap      float64
	maxGapStart float64
}

func (l *lane) add(s darshan.MergedSegment, span float64) {
	if l.segs == 0 {
		l.firstStart = s.Start
	} else if gap := s.Start - l.prevEnd; gap > l.maxGap {
		l.maxGap = gap
		l.maxGapStart = l.prevEnd
	}
	if s.End > l.prevEnd {
		l.prevEnd = s.End
	}
	if s.End > l.lastEnd {
		l.lastEnd = s.End
	}
	l.segs++
	if s.Write {
		l.writeBytes += s.Length
	} else {
		l.readBytes += s.Length
	}
	cols := len(l.cells)
	lo := int(s.Start / span * float64(cols))
	hi := int(s.End / span * float64(cols))
	for c := lo; c <= hi && c < cols; c++ {
		if c < 0 {
			continue
		}
		if s.Write {
			l.cells[c] |= 2
		} else {
			l.cells[c] |= 1
		}
	}
}

func (l *lane) strip() string {
	out := make([]byte, len(l.cells))
	for i, c := range l.cells {
		out[i] = [4]byte{'.', 'r', 'w', 'x'}[c&3]
	}
	return string(out)
}

// fmtBytes renders a byte count in KB below 1 MB (checkpoint records are
// small) and MB above.
func fmtBytes(n int64) string {
	if n < 1e6 {
		return fmt.Sprintf("%.1fKB", float64(n)/1e3)
	}
	return fmt.Sprintf("%.1fMB", float64(n)/1e6)
}

// renderDarshan streams a binary Darshan log into per-rank activity
// lanes. Merged logs get one lane per rank from the rank-attributed
// timeline; single-process logs get one lane fed by the per-file DXT
// records.
func renderDarshan(w io.Writer, r io.Reader, cols int) error {
	lr, err := darshan.NewLogReader(r)
	if err != nil {
		return err
	}
	span := lr.JobEnd()
	if span <= 0 {
		span = 1
	}
	kind := "single"
	if lr.Merged() {
		kind = "merged"
	}
	lanes := make([]*lane, lr.NProcs())
	for i := range lanes {
		lanes[i] = &lane{cells: make([]byte, cols)}
	}
	files := map[uint64]bool{}
	if lr.Merged() {
		for {
			s, ok, err := lr.NextSegment()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			files[s.ID] = true
			if s.Rank < 0 {
				// The decoder tolerates MergedRank on segments even though
				// Merge only emits it on records; don't crash on such a log.
				continue
			}
			lanes[s.Rank].add(s, span)
		}
	} else {
		for {
			rec, ok, err := lr.NextDXT()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			files[rec.ID] = true
			for dir, segs := range [2][]darshan.Segment{rec.ReadSegs, rec.WriteSegs} {
				for _, s := range segs {
					lanes[0].add(darshan.MergedSegment{Segment: s, ID: rec.ID, Write: dir == 1}, span)
				}
			}
		}
	}
	if err := lr.Finish(); err != nil {
		return err
	}

	var total int64
	for _, l := range lanes {
		total += l.segs
	}
	fmt.Fprintf(w, "=== darshan %s log: nprocs %d, job end %.3fs ===\n", kind, lr.NProcs(), lr.JobEnd())
	fmt.Fprintf(w, "%d segments (dropped %d) over %d files; %d columns of %.3fs (r=read w=write x=both .=idle)\n",
		total, lr.DroppedSegments(), len(files), cols, span/float64(cols))
	for rank, l := range lanes {
		fmt.Fprintf(w, "rank %d |%s|\n", rank, l.strip())
		if l.segs == 0 {
			fmt.Fprintf(w, "        no traced activity\n")
			continue
		}
		fmt.Fprintf(w, "        %d segs, read %s write %s, active %.3fs..%.3fs",
			l.segs, fmtBytes(l.readBytes), fmtBytes(l.writeBytes), l.firstStart, l.lastEnd)
		if l.maxGap > 0 {
			fmt.Fprintf(w, ", largest gap %.3fs at %.3fs", l.maxGap, l.maxGapStart)
		}
		fmt.Fprintln(w)
	}
	return nil
}
