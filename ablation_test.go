package repro

import (
	"fmt"
	"testing"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/tf/tfdata"
	"repro/internal/tf/tfio"
	"repro/internal/workload"
)

// Ablation benchmarks quantify the design alternatives the paper's
// discussion (§VII) raises: packing samples into TFRecord containers
// versus per-file reads, and the effect of prefetch depth on the overlap
// between input pipeline and accelerator.

// BenchmarkAblationTFRecordVsFiles compares one pass over an ImageNet-like
// small-file corpus read per-file (the paper's measured configuration)
// against the same bytes packed into TFRecord shards ("One way to improve
// bandwidth performance is to use data containers such as TFRecord").
func BenchmarkAblationTFRecordVsFiles(b *testing.B) {
	const nFiles = 2048
	var perFileSec, shardSec float64
	for i := 0; i < b.N; i++ {
		m := platform.NewGreendog(platform.Options{})
		paths := make([]string, nFiles)
		for j := range paths {
			paths[j] = fmt.Sprintf("%s/in/f%05d", platform.GreendogHDDPath, j)
			if _, err := m.FS.CreateFile(paths[j], 88*1024); err != nil {
				b.Fatal(err)
			}
		}
		m.K.Spawn("bench", func(t *sim.Thread) {
			t0 := t.Now()
			for _, p := range paths {
				if _, err := tfio.ReadFile(t, m.Env, p); err != nil {
					b.Error(err)
					return
				}
			}
			perFileSec = sim.Seconds(t.Now() - t0)

			shards, err := tfio.BuildTFRecordShards(t, m.Env, paths, platform.GreendogHDDPath+"/tfr", 64<<20)
			if err != nil {
				b.Error(err)
				return
			}
			t0 = t.Now()
			for _, s := range shards {
				if _, err := tfio.ScanShard(t, m.Env, s); err != nil {
					b.Error(err)
					return
				}
			}
			shardSec = sim.Seconds(t.Now() - t0)
		})
		if err := m.K.Run(); err != nil {
			b.Fatal(err)
		}
	}
	totalMB := float64(nFiles) * 88 * 1024 / 1e6
	b.ReportMetric(totalMB/perFileSec, "perfile_MBps")
	b.ReportMetric(totalMB/shardSec, "tfrecord_MBps")
	b.ReportMetric(perFileSec/shardSec, "container_speedup_x")
}

// BenchmarkAblationPrefetchDepth sweeps the prefetch buffer depth with a
// compute step sized to roughly match mean batch production time. The
// measured effect is small and that is the finding: because map and batch
// stages run on their own threads (as tf.data's parallel map does),
// production overlaps training even with no prefetch buffer; the paper's
// prefetch-10 is conservative insurance against production burstiness,
// not the source of the overlap. In the paper's own configurations the
// pipelines are so I/O-bound that depth matters even less.
func BenchmarkAblationPrefetchDepth(b *testing.B) {
	depths := []int{0, 1, 10}
	walls := make([]float64, len(depths))
	for i := 0; i < b.N; i++ {
		for di, depth := range depths {
			m := platform.NewGreendog(platform.Options{})
			d, err := workload.BuildMalware(m.FS, workload.MalwareSpec(platform.GreendogHDDPath+"/mw", 0.02))
			if err != nil {
				b.Fatal(err)
			}
			m.K.Spawn("bench", func(t *sim.Thread) {
				ds := tfdata.FromFiles(m.Env, d.Paths).Shuffle(1).
					Map(workload.MalwareMap, 1).Batch(8).Prefetch(depth)
				it, err := ds.MakeIterator()
				if err != nil {
					b.Error(err)
					return
				}
				for {
					_, ok := it.Next(t)
					if !ok {
						break
					}
					// A step near mean batch production time: the bursty-parity regime.
					m.Env.GPU.Launch(t, "step", 400*sim.Millisecond)
				}
				it.Close(t)
			})
			if err := m.K.Run(); err != nil {
				b.Fatal(err)
			}
			walls[di] = sim.Seconds(m.K.Now())
		}
	}
	for di, depth := range depths {
		b.ReportMetric(walls[di], fmt.Sprintf("wall_s_prefetch%d", depth))
	}
	b.ReportMetric(walls[0]/walls[len(walls)-1], "prefetch_speedup_x")
}

// BenchmarkAblationAutotune measures how many probe windows the
// tf-Darshan-driven auto-tuner needs to find the threading knee on the
// Lustre platform (the §VII auto-tuning opportunity).
func BenchmarkAblationAutotune(b *testing.B) {
	var probes, chosen int
	for i := 0; i < b.N; i++ {
		res, err := runAutotuneProbe()
		if err != nil {
			b.Fatal(err)
		}
		probes, chosen = res[0], res[1]
	}
	b.ReportMetric(float64(probes), "probe_windows")
	b.ReportMetric(float64(chosen), "chosen_threads")
}
